// EdgeList: structure-of-arrays edge container (Algorithm 1's matrix E).
//
// The interpreted and compiled-serial GEE backends operate on this container
// directly, mirroring the reference implementation's single pass over the
// edge array; the engine backends first build a CSR Graph from it.
// Weights are optional: an unweighted list stores no weight array and all
// weight accessors return 1 (the paper's graphs are unweighted).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "graph/types.hpp"

namespace gee::graph {

class EdgeList {
 public:
  EdgeList() = default;

  /// Construct with a fixed vertex-count bound; edges may reference any
  /// vertex in [0, num_vertices).
  explicit EdgeList(VertexId num_vertices) : num_vertices_(num_vertices) {}

  /// Number of vertices; grows automatically as edges are added.
  [[nodiscard]] VertexId num_vertices() const noexcept { return num_vertices_; }
  [[nodiscard]] EdgeId num_edges() const noexcept { return src_.size(); }
  [[nodiscard]] bool empty() const noexcept { return src_.empty(); }
  [[nodiscard]] bool weighted() const noexcept { return !weights_.empty(); }

  void reserve(std::size_t n) {
    src_.reserve(n);
    dst_.reserve(n);
    if (weighted()) weights_.reserve(n);
  }

  /// Append an unweighted (unit-weight) edge.
  void add(VertexId u, VertexId v);

  /// Append a weighted edge. The first weighted add on an unweighted list
  /// materializes unit weights for all earlier edges.
  void add(VertexId u, VertexId v, Weight w);

  /// Raise the vertex-count bound (no-op if already larger).
  void ensure_vertices(VertexId n) {
    if (n > num_vertices_) num_vertices_ = n;
  }

  [[nodiscard]] Edge edge(std::size_t i) const noexcept {
    return {src_[i], dst_[i], weight(i)};
  }
  [[nodiscard]] VertexId src(std::size_t i) const noexcept { return src_[i]; }
  [[nodiscard]] VertexId dst(std::size_t i) const noexcept { return dst_[i]; }
  [[nodiscard]] Weight weight(std::size_t i) const noexcept {
    return weights_.empty() ? Weight{1} : weights_[i];
  }

  [[nodiscard]] std::span<const VertexId> srcs() const noexcept { return src_; }
  [[nodiscard]] std::span<const VertexId> dsts() const noexcept { return dst_; }
  /// Empty span when the list is unweighted.
  [[nodiscard]] std::span<const Weight> weights() const noexcept {
    return weights_;
  }

  /// Bulk construction from parallel generators: adopt prebuilt arrays.
  /// `weights` may be empty (unweighted). Vectors must have equal length.
  static EdgeList adopt(VertexId num_vertices, std::vector<VertexId> src,
                        std::vector<VertexId> dst,
                        std::vector<Weight> weights = {});

  /// Mutable access for in-place transforms (transform.hpp).
  std::vector<VertexId>& mutable_srcs() noexcept { return src_; }
  std::vector<VertexId>& mutable_dsts() noexcept { return dst_; }
  std::vector<Weight>& mutable_weights() noexcept { return weights_; }

  friend bool operator==(const EdgeList&, const EdgeList&) = default;

 private:
  VertexId num_vertices_ = 0;
  std::vector<VertexId> src_;
  std::vector<VertexId> dst_;
  std::vector<Weight> weights_;  // empty == all unit
};

}  // namespace gee::graph
