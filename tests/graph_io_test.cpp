// Round-trip and error-handling tests for the three graph I/O formats.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "graph/builder.hpp"
#include "graph/io.hpp"
#include "graph/validation.hpp"
#include "util/rng.hpp"

namespace {

using namespace gee::graph;

class IoTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("gee_io_test_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  [[nodiscard]] std::string path(const std::string& name) const {
    return (dir_ / name).string();
  }

  static EdgeList sample_edges(bool weighted) {
    gee::util::Xoshiro256 rng(5);
    EdgeList el(200);
    for (int e = 0; e < 1000; ++e) {
      const auto u = static_cast<VertexId>(rng.next_below(200));
      const auto v = static_cast<VertexId>(rng.next_below(200));
      if (weighted) {
        el.add(u, v, static_cast<Weight>(rng.next_below(100)) / 4.0f);
      } else {
        el.add(u, v);
      }
    }
    return el;
  }

  std::filesystem::path dir_;
};

// ----------------------------------------------------------- text edge list

TEST_F(IoTest, TextRoundTripUnweighted) {
  const EdgeList el = sample_edges(false);
  write_edge_list_text(el, path("a.txt"));
  const EdgeList back = read_edge_list_text(path("a.txt"));
  EXPECT_EQ(back.num_edges(), el.num_edges());
  EXPECT_FALSE(back.weighted());
  for (EdgeId e = 0; e < el.num_edges(); ++e) {
    ASSERT_EQ(back.src(e), el.src(e));
    ASSERT_EQ(back.dst(e), el.dst(e));
  }
}

TEST_F(IoTest, TextRoundTripWeighted) {
  const EdgeList el = sample_edges(true);
  write_edge_list_text(el, path("w.txt"));
  const EdgeList back = read_edge_list_text(path("w.txt"));
  ASSERT_TRUE(back.weighted());
  for (EdgeId e = 0; e < el.num_edges(); ++e) {
    ASSERT_EQ(back.weight(e), el.weight(e));
  }
}

TEST_F(IoTest, TextSkipsCommentsAndBlankLines) {
  {
    std::ofstream f(path("c.txt"));
    f << "# SNAP header\n% matrix-market style\n\n  \n0 1\n# mid comment\n2 3\n";
  }
  const EdgeList el = read_edge_list_text(path("c.txt"));
  EXPECT_EQ(el.num_edges(), 2u);
  EXPECT_EQ(el.src(1), 2u);
}

TEST_F(IoTest, TextHandlesTabsAndCRLF) {
  {
    std::ofstream f(path("t.txt"));
    f << "0\t1\r\n5\t2\t2.5\r\n";
  }
  const EdgeList el = read_edge_list_text(path("t.txt"));
  ASSERT_EQ(el.num_edges(), 2u);
  EXPECT_EQ(el.dst(0), 1u);
  EXPECT_EQ(el.weight(1), 2.5f);
}

TEST_F(IoTest, TextRejectsGarbage) {
  {
    std::ofstream f(path("bad.txt"));
    f << "0 not_a_number\n";
  }
  EXPECT_THROW(read_edge_list_text(path("bad.txt")), std::runtime_error);
}

TEST_F(IoTest, TextRejectsTooManyFields) {
  {
    std::ofstream f(path("bad2.txt"));
    f << "0 1 2.0 extra\n";
  }
  EXPECT_THROW(read_edge_list_text(path("bad2.txt")), std::runtime_error);
}

TEST_F(IoTest, TextRejectsWeightsWhenDisallowed) {
  {
    std::ofstream f(path("bad3.txt"));
    f << "0 1 2.0\n";
  }
  TextReadOptions opt;
  opt.allow_weights = false;
  EXPECT_THROW(read_edge_list_text(path("bad3.txt"), opt), std::runtime_error);
}

TEST_F(IoTest, TextMissingFileThrows) {
  EXPECT_THROW(read_edge_list_text(path("nope.txt")), std::runtime_error);
}

TEST_F(IoTest, TextNoTrailingNewline) {
  {
    std::ofstream f(path("nl.txt"));
    f << "0 1\n2 3";  // no trailing newline
  }
  EXPECT_EQ(read_edge_list_text(path("nl.txt")).num_edges(), 2u);
}

// ----------------------------------------------------------------- binary

TEST_F(IoTest, BinaryRoundTripExact) {
  for (bool weighted : {false, true}) {
    const EdgeList el = sample_edges(weighted);
    const std::string p = path(weighted ? "w.geeb" : "u.geeb");
    write_edge_list_binary(el, p);
    const EdgeList back = read_edge_list_binary(p);
    EXPECT_EQ(back, el) << "weighted=" << weighted;
  }
}

TEST_F(IoTest, BinaryEmptyList) {
  const EdgeList el(7);
  write_edge_list_binary(el, path("e.geeb"));
  const EdgeList back = read_edge_list_binary(path("e.geeb"));
  EXPECT_EQ(back.num_vertices(), 7u);
  EXPECT_EQ(back.num_edges(), 0u);
}

TEST_F(IoTest, BinaryRejectsBadMagic) {
  {
    std::ofstream f(path("bad.geeb"), std::ios::binary);
    f << "NOPE and more bytes to get past the header";
  }
  EXPECT_THROW(read_edge_list_binary(path("bad.geeb")), std::runtime_error);
}

TEST_F(IoTest, BinaryRejectsTruncation) {
  const EdgeList el = sample_edges(false);
  write_edge_list_binary(el, path("t.geeb"));
  // Truncate the file to half size.
  const auto full = std::filesystem::file_size(path("t.geeb"));
  std::filesystem::resize_file(path("t.geeb"), full / 2);
  EXPECT_THROW(read_edge_list_binary(path("t.geeb")), std::runtime_error);
}

TEST_F(IoTest, BinaryRejectsOutOfRangeVertex) {
  // Hand-craft a file with n=1 but an edge to vertex 5.
  std::ofstream f(path("oor.geeb"), std::ios::binary);
  f << "GEEB";
  const std::uint32_t version = 1, n = 1;
  const std::uint64_t m = 1;
  const std::uint8_t weighted = 0;
  f.write(reinterpret_cast<const char*>(&version), 4);
  f.write(reinterpret_cast<const char*>(&n), 4);
  f.write(reinterpret_cast<const char*>(&m), 8);
  f.write(reinterpret_cast<const char*>(&weighted), 1);
  const std::uint32_t src = 0, dst = 5;
  f.write(reinterpret_cast<const char*>(&src), 4);
  f.write(reinterpret_cast<const char*>(&dst), 4);
  f.close();
  EXPECT_THROW(read_edge_list_binary(path("oor.geeb")), std::runtime_error);
}

// ------------------------------------------------------------------- Ligra

TEST_F(IoTest, LigraRoundTripUnweighted) {
  const Csr csr = build_csr(sample_edges(false), 200);
  write_ligra_adjacency(csr, path("g.adj"));
  const Csr back = read_ligra_adjacency(path("g.adj"));
  EXPECT_TRUE(std::ranges::equal(back.offsets(), csr.offsets()));
  EXPECT_TRUE(std::ranges::equal(back.targets(), csr.targets()));
  EXPECT_FALSE(back.weighted());
  EXPECT_TRUE(validate(back).empty());
}

TEST_F(IoTest, LigraRoundTripWeighted) {
  const Csr csr = build_csr(sample_edges(true), 200);
  write_ligra_adjacency(csr, path("gw.adj"));
  const Csr back = read_ligra_adjacency(path("gw.adj"));
  ASSERT_TRUE(back.weighted());
  EXPECT_TRUE(std::ranges::equal(back.weights(), csr.weights()));
}

TEST_F(IoTest, LigraHeaderExactFormat) {
  EdgeList el(3);
  el.add(0, 1);
  el.add(0, 2);
  el.add(2, 0);
  write_ligra_adjacency(build_csr(el, 3), path("h.adj"));
  std::ifstream f(path("h.adj"));
  std::string l1;
  std::uint64_t n = 0, m = 0;
  f >> l1 >> n >> m;
  EXPECT_EQ(l1, "AdjacencyGraph");
  EXPECT_EQ(n, 3u);
  EXPECT_EQ(m, 3u);
  // First offsets: 0 (v0), 2 (v1), 2 (v2).
  std::uint64_t o0 = 9, o1 = 9, o2 = 9;
  f >> o0 >> o1 >> o2;
  EXPECT_EQ(o0, 0u);
  EXPECT_EQ(o1, 2u);
  EXPECT_EQ(o2, 2u);
}

TEST_F(IoTest, LigraRejectsBadHeader) {
  {
    std::ofstream f(path("bad.adj"));
    f << "NotAGraph\n3\n0\n";
  }
  EXPECT_THROW(read_ligra_adjacency(path("bad.adj")), std::runtime_error);
}

TEST_F(IoTest, LigraRejectsNonMonotoneOffsets) {
  {
    std::ofstream f(path("mono.adj"));
    f << "AdjacencyGraph\n3\n2\n0\n2\n1\n0\n1\n";
  }
  EXPECT_THROW(read_ligra_adjacency(path("mono.adj")), std::runtime_error);
}

TEST_F(IoTest, LigraRejectsTargetOutOfRange) {
  {
    std::ofstream f(path("oor.adj"));
    f << "AdjacencyGraph\n2\n1\n0\n1\n7\n";
  }
  EXPECT_THROW(read_ligra_adjacency(path("oor.adj")), std::runtime_error);
}

TEST_F(IoTest, LigraEmptyGraph) {
  {
    std::ofstream f(path("empty.adj"));
    f << "AdjacencyGraph\n0\n0\n";
  }
  const Csr csr = read_ligra_adjacency(path("empty.adj"));
  EXPECT_EQ(csr.num_vertices(), 0u);
  EXPECT_EQ(csr.num_edges(), 0u);
}

}  // namespace
