// Tests for the graph generators: exact counts, value ranges, determinism
// across thread counts (the chunked-RNG contract), and distributional
// sanity (ER uniformity, SBM block densities, R-MAT degree skew).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <map>
#include <set>

#include "gen/erdos_renyi.hpp"
#include "gen/labels.hpp"
#include "gen/rmat.hpp"
#include "gen/sbm.hpp"
#include "graph/builder.hpp"
#include "graph/validation.hpp"
#include "parallel/parallel_for.hpp"

namespace {

using namespace gee::gen;
using namespace gee::graph;
using gee::par::ThreadScope;

// ------------------------------------------------------------- Erdős–Rényi

TEST(ErdosRenyiGnm, ExactEdgeCountAndRange) {
  const auto el = erdos_renyi_gnm(1000, 50000, 1);
  EXPECT_EQ(el.num_edges(), 50000u);
  EXPECT_EQ(el.num_vertices(), 1000u);
  for (EdgeId e = 0; e < el.num_edges(); ++e) {
    ASSERT_LT(el.src(e), 1000u);
    ASSERT_LT(el.dst(e), 1000u);
    ASSERT_NE(el.src(e), el.dst(e));  // loop-free default
  }
}

TEST(ErdosRenyiGnm, SelfLoopsWhenAllowed) {
  const auto el = erdos_renyi_gnm(10, 20000, 2, {.allow_self_loops = true});
  bool any_loop = false;
  for (EdgeId e = 0; e < el.num_edges(); ++e) {
    any_loop |= el.src(e) == el.dst(e);
  }
  EXPECT_TRUE(any_loop);  // expected ~2000 loops; P(none) ~ 0
}

TEST(ErdosRenyiGnm, DeterministicAcrossThreadCounts) {
  EdgeList ref;
  {
    ThreadScope scope(1);
    ref = erdos_renyi_gnm(500, 300000, 7);
  }
  for (int t : {2, 8}) {
    ThreadScope scope(t);
    ASSERT_EQ(erdos_renyi_gnm(500, 300000, 7), ref) << "threads " << t;
  }
}

TEST(ErdosRenyiGnm, SeedChangesOutput) {
  EXPECT_NE(erdos_renyi_gnm(100, 1000, 1), erdos_renyi_gnm(100, 1000, 2));
}

TEST(ErdosRenyiGnm, DegreesApproximatelyUniform) {
  // Out-degrees of G(n, m) are Binomial(m, 1/n): mean 100, sd ~10.
  const VertexId n = 500;
  const auto el = erdos_renyi_gnm(n, 50000, 3);
  const Csr csr = build_csr(el, n);
  const auto stats = degree_stats(csr);
  EXPECT_NEAR(stats.mean, 100.0, 0.01);
  EXPECT_GT(stats.min, 40u);   // ~6 sd below mean
  EXPECT_LT(stats.max, 200u);  // ~10 sd above mean
}

TEST(ErdosRenyiGnm, InvalidArguments) {
  EXPECT_THROW(erdos_renyi_gnm(0, 5, 1), std::invalid_argument);
  EXPECT_THROW(erdos_renyi_gnm(1, 5, 1), std::invalid_argument);
  EXPECT_NO_THROW(erdos_renyi_gnm(1, 5, 1, {.allow_self_loops = true}));
  EXPECT_EQ(erdos_renyi_gnm(0, 0, 1).num_edges(), 0u);
}

TEST(ErdosRenyiGnp, EdgeCountNearExpectation) {
  const VertexId n = 1000;
  const double p = 0.01;
  const auto el = erdos_renyi_gnp(n, p, 4);
  // Expected edges: p * n * (n-1) (ordered pairs, no loops) ~ 9990, sd ~100.
  const double expected = p * n * (n - 1);
  EXPECT_NEAR(static_cast<double>(el.num_edges()), expected, 5 * 100.0);
  for (EdgeId e = 0; e < el.num_edges(); ++e) {
    ASSERT_NE(el.src(e), el.dst(e));
  }
}

TEST(ErdosRenyiGnp, NoDuplicateOrderedPairs) {
  const auto el = erdos_renyi_gnp(200, 0.05, 5);
  std::set<std::pair<VertexId, VertexId>> seen;
  for (EdgeId e = 0; e < el.num_edges(); ++e) {
    ASSERT_TRUE(seen.insert({el.src(e), el.dst(e)}).second);
  }
}

TEST(ErdosRenyiGnp, DeterministicAcrossThreadCounts) {
  EdgeList ref;
  {
    ThreadScope scope(1);
    ref = erdos_renyi_gnp(2000, 0.01, 6);
  }
  ThreadScope scope(8);
  EXPECT_EQ(erdos_renyi_gnp(2000, 0.01, 6), ref);
}

TEST(ErdosRenyiGnp, EdgeCases) {
  EXPECT_EQ(erdos_renyi_gnp(100, 0.0, 1).num_edges(), 0u);
  EXPECT_EQ(erdos_renyi_gnp(0, 0.5, 1).num_edges(), 0u);
  // p = 1: complete directed graph without loops.
  const auto el = erdos_renyi_gnp(20, 1.0, 1);
  EXPECT_EQ(el.num_edges(), 20u * 19u);
  EXPECT_THROW(erdos_renyi_gnp(10, 1.5, 1), std::invalid_argument);
  EXPECT_THROW(erdos_renyi_gnp(10, -0.1, 1), std::invalid_argument);
}

TEST(ErdosRenyiGnp, BernoulliFrequencyPerPair) {
  // With p = 0.3 and 100 vertices, specific pair (3, 7) should appear in
  // ~30% of seeds.
  int hits = 0;
  for (std::uint64_t seed = 0; seed < 200; ++seed) {
    const auto el = erdos_renyi_gnp(20, 0.3, seed);
    for (EdgeId e = 0; e < el.num_edges(); ++e) {
      if (el.src(e) == 3 && el.dst(e) == 7) {
        ++hits;
        break;
      }
    }
  }
  EXPECT_NEAR(hits / 200.0, 0.3, 0.12);
}

// --------------------------------------------------------------------- SBM

TEST(Sbm, BalancedParamsPartitionVertices) {
  const auto params = SbmParams::balanced(10, 3, 0.5, 0.1);
  EXPECT_EQ(params.block_sizes, (std::vector<VertexId>{4, 3, 3}));
  EXPECT_EQ(params.num_vertices(), 10u);
  EXPECT_DOUBLE_EQ(params.connectivity[0][0], 0.5);
  EXPECT_DOUBLE_EQ(params.connectivity[0][1], 0.1);
}

TEST(Sbm, ValidateRejectsBadParams) {
  SbmParams p = SbmParams::balanced(10, 2, 0.5, 0.1);
  p.connectivity[0][1] = 0.3;  // asymmetric
  EXPECT_THROW(p.validate(), std::invalid_argument);
  p = SbmParams::balanced(10, 2, 1.5, 0.1);
  EXPECT_THROW(p.validate(), std::invalid_argument);
  p = SbmParams::balanced(10, 2, 0.5, 0.1);
  p.connectivity.pop_back();
  EXPECT_THROW(p.validate(), std::invalid_argument);
}

TEST(Sbm, LabelsMatchBlockLayout) {
  const auto result = sbm(SbmParams::balanced(100, 4, 0.2, 0.01), 1);
  ASSERT_EQ(result.labels.size(), 100u);
  EXPECT_EQ(result.labels[0], 0);
  EXPECT_EQ(result.labels[25], 1);
  EXPECT_EQ(result.labels[99], 3);
  EXPECT_TRUE(std::is_sorted(result.labels.begin(), result.labels.end()));
}

TEST(Sbm, EdgesAreUpperTriangular) {
  const auto result = sbm(SbmParams::balanced(200, 2, 0.1, 0.02), 2);
  for (EdgeId e = 0; e < result.edges.num_edges(); ++e) {
    ASSERT_LT(result.edges.src(e), result.edges.dst(e));
  }
}

TEST(Sbm, BlockDensitiesMatchProbabilities) {
  const VertexId n = 1000;
  const double p_in = 0.10, p_out = 0.01;
  const auto result = sbm(SbmParams::balanced(n, 2, p_in, p_out), 3);

  EdgeId within = 0, across = 0;
  for (EdgeId e = 0; e < result.edges.num_edges(); ++e) {
    const bool same = result.labels[result.edges.src(e)] ==
                      result.labels[result.edges.dst(e)];
    (same ? within : across)++;
  }
  // Pairs within: 2 * C(500,2) = 249500; across: 500*500 = 250000.
  const double density_in = static_cast<double>(within) / 249500.0;
  const double density_out = static_cast<double>(across) / 250000.0;
  EXPECT_NEAR(density_in, p_in, 0.01);
  EXPECT_NEAR(density_out, p_out, 0.003);
}

TEST(Sbm, DeterministicAcrossThreadCounts) {
  const auto params = SbmParams::balanced(500, 3, 0.1, 0.01);
  SbmResult ref;
  {
    ThreadScope scope(1);
    ref = sbm(params, 9);
  }
  ThreadScope scope(8);
  const auto got = sbm(params, 9);
  EXPECT_EQ(got.edges, ref.edges);
  EXPECT_EQ(got.labels, ref.labels);
}

TEST(Sbm, ZeroProbabilityBlocksProduceNoEdges) {
  SbmParams params = SbmParams::balanced(100, 2, 0.2, 0.0);
  const auto result = sbm(params, 4);
  for (EdgeId e = 0; e < result.edges.num_edges(); ++e) {
    ASSERT_EQ(result.labels[result.edges.src(e)],
              result.labels[result.edges.dst(e)]);
  }
}

// -------------------------------------------------------------------- R-MAT

TEST(Rmat, CountsAndRange) {
  const auto el = rmat(10, 16, 1);
  EXPECT_EQ(el.num_vertices(), 1024u);
  EXPECT_EQ(el.num_edges(), 16u * 1024u);
  for (EdgeId e = 0; e < el.num_edges(); ++e) {
    ASSERT_LT(el.src(e), 1024u);
    ASSERT_LT(el.dst(e), 1024u);
    ASSERT_NE(el.src(e), el.dst(e));
  }
}

TEST(Rmat, DeterministicAcrossThreadCounts) {
  EdgeList ref;
  {
    ThreadScope scope(1);
    ref = rmat(12, 16, 5);
  }
  ThreadScope scope(8);
  EXPECT_EQ(rmat(12, 16, 5), ref);
}

TEST(Rmat, SkewedDegreesVersusErdosRenyi) {
  // Same n, m: R-MAT max degree must far exceed ER max degree.
  const auto el_rmat = rmat(12, 16, 3);
  const auto el_er =
      erdos_renyi_gnm(el_rmat.num_vertices(), el_rmat.num_edges(), 3);
  const auto s_rmat = degree_stats(build_csr(el_rmat, el_rmat.num_vertices()));
  const auto s_er = degree_stats(build_csr(el_er, el_er.num_vertices()));
  EXPECT_GT(s_rmat.max, 3 * s_er.max);
  // And a heavy tail: p99 well above the median.
  EXPECT_GT(s_rmat.p99, 2.0 * s_rmat.median);
}

TEST(Rmat, PermutationPreservesDegreeMultiset) {
  RmatOptions no_perm;
  no_perm.permute_vertices = false;
  const auto a = rmat(10, 8, 7, no_perm);
  const auto b = rmat(10, 8, 7, {});  // permuted, same seed
  auto degrees = [](const EdgeList& el) {
    std::vector<EdgeId> d(el.num_vertices(), 0);
    for (EdgeId e = 0; e < el.num_edges(); ++e) d[el.src(e)]++;
    std::sort(d.begin(), d.end());
    return d;
  };
  EXPECT_EQ(degrees(a), degrees(b));
  EXPECT_NE(a, b);  // but the labeling differs
}

TEST(Rmat, InvalidArguments) {
  EXPECT_THROW(rmat(0, 4, 1), std::invalid_argument);
  EXPECT_THROW(rmat(32, 4, 1), std::invalid_argument);
  RmatOptions bad;
  bad.a = 0.9;  // a+b+c+d != 1
  EXPECT_THROW(rmat(5, 4, 1, bad), std::invalid_argument);
}

TEST(RmatApprox, HitsRequestedSizes) {
  const auto el = rmat_approx(3'000'00, 1'170'000, 11);  // Orkut/10 shape
  EXPECT_EQ(el.num_vertices(), 300000u);
  EXPECT_EQ(el.num_edges(), 1170000u);
  const auto stats = degree_stats(build_csr(el, el.num_vertices()));
  EXPECT_GT(stats.max, 50u);  // skew survives folding
}

TEST(RmatApprox, NonPowerOfTwoVertices) {
  const auto el = rmat_approx(1000, 8000, 2);
  EXPECT_EQ(el.num_vertices(), 1000u);
  EXPECT_EQ(el.num_edges(), 8000u);
  for (EdgeId e = 0; e < el.num_edges(); ++e) {
    ASSERT_LT(el.src(e), 1000u);
    ASSERT_LT(el.dst(e), 1000u);
    ASSERT_NE(el.src(e), el.dst(e));
  }
}

// ------------------------------------------------------------------ labels

TEST(Labels, SemiSupervisedExactCountAndRange) {
  const auto y = semi_supervised_labels(10000, 50, 0.10, 1);
  ASSERT_EQ(y.size(), 10000u);
  EXPECT_EQ(num_labeled(y), 1000u);  // exactly 10%
  for (auto v : y) {
    ASSERT_GE(v, -1);
    ASSERT_LT(v, 50);
  }
  EXPECT_EQ(num_classes(y), 50);  // all 50 classes hit w.h.p. at 1000 draws
}

TEST(Labels, FractionZeroAndOne) {
  const auto none = semi_supervised_labels(100, 5, 0.0, 1);
  EXPECT_EQ(num_labeled(none), 0u);
  EXPECT_EQ(num_classes(none), 0);
  const auto all = semi_supervised_labels(100, 5, 1.0, 1);
  EXPECT_EQ(num_labeled(all), 100u);
}

TEST(Labels, SemiSupervisedDeterministic) {
  EXPECT_EQ(semi_supervised_labels(1000, 10, 0.2, 3),
            semi_supervised_labels(1000, 10, 0.2, 3));
  EXPECT_NE(semi_supervised_labels(1000, 10, 0.2, 3),
            semi_supervised_labels(1000, 10, 0.2, 4));
}

TEST(Labels, SemiSupervisedClassBalance) {
  const auto y = semi_supervised_labels(100000, 10, 0.5, 5);
  std::map<std::int32_t, int> counts;
  for (auto v : y) {
    if (v >= 0) counts[v]++;
  }
  for (const auto& [cls, count] : counts) {
    EXPECT_NEAR(count, 5000, 400) << "class " << cls;
  }
}

TEST(Labels, InvalidArguments) {
  EXPECT_THROW(semi_supervised_labels(10, 0, 0.5, 1), std::invalid_argument);
  EXPECT_THROW(semi_supervised_labels(10, 5, 1.5, 1), std::invalid_argument);
  EXPECT_THROW(observe_labels(std::vector<std::int32_t>{0}, -0.5, 1),
               std::invalid_argument);
}

TEST(Labels, ObserveKeepsTruthValuesOnly) {
  std::vector<std::int32_t> truth(20000);
  for (std::size_t i = 0; i < truth.size(); ++i) {
    truth[i] = static_cast<std::int32_t>(i % 7);
  }
  const auto observed = observe_labels(truth, 0.25, 2);
  VertexId kept = 0;
  for (std::size_t i = 0; i < truth.size(); ++i) {
    if (observed[i] >= 0) {
      ASSERT_EQ(observed[i], truth[i]);
      ++kept;
    }
  }
  EXPECT_NEAR(static_cast<double>(kept) / 20000.0, 0.25, 0.02);
}

TEST(Labels, ObserveExactCountAndTruthfulness) {
  std::vector<std::int32_t> truth(1000);
  for (std::size_t i = 0; i < truth.size(); ++i) {
    truth[i] = static_cast<std::int32_t>(i % 4);
  }
  const auto observed = observe_labels_exact(truth, 0.10, 5);
  EXPECT_EQ(num_labeled(observed), 100u);  // exactly 10%
  for (std::size_t i = 0; i < truth.size(); ++i) {
    if (observed[i] >= 0) {
      ASSERT_EQ(observed[i], truth[i]);
    }
  }
  // Deterministic; different seeds select different subsets.
  EXPECT_EQ(observe_labels_exact(truth, 0.10, 5), observed);
  EXPECT_NE(observe_labels_exact(truth, 0.10, 6), observed);
  EXPECT_EQ(num_labeled(observe_labels_exact(truth, 0.0, 1)), 0u);
  EXPECT_EQ(num_labeled(observe_labels_exact(truth, 1.0, 1)), 1000u);
  EXPECT_THROW(observe_labels_exact(truth, 1.0001, 1), std::invalid_argument);
}

TEST(Labels, ObserveDeterministicAcrossThreadCounts) {
  std::vector<std::int32_t> truth(50000, 3);
  std::vector<std::int32_t> ref;
  {
    ThreadScope scope(1);
    ref = observe_labels(truth, 0.5, 7);
  }
  ThreadScope scope(8);
  EXPECT_EQ(observe_labels(truth, 0.5, 7), ref);
}

}  // namespace
