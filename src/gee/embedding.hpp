// Embedding: the n x K output matrix Z of GEE.
//
// Row-major, cache-line aligned, zero-filled in parallel (first-touch --
// at paper scale Z is gigabytes and a serial memset both costs seconds and
// pins every page to one NUMA node). Row v is the K-dimensional embedding
// of vertex v; with semi-supervised labels most mass lands in the columns
// of classes adjacent to v.
#pragma once

#include <cstddef>
#include <span>

#include "graph/types.hpp"
#include "gee/options.hpp"
#include "util/buffer.hpp"

namespace gee::core {

using graph::VertexId;

class Embedding {
 public:
  Embedding() = default;

  /// Allocate n x k and zero-fill in parallel.
  Embedding(VertexId n, int k);

  [[nodiscard]] VertexId num_vertices() const noexcept { return n_; }
  [[nodiscard]] int dim() const noexcept { return k_; }
  [[nodiscard]] bool empty() const noexcept { return data_.empty(); }

  [[nodiscard]] std::span<Real> row(VertexId v) noexcept {
    return {data_.data() + static_cast<std::size_t>(v) * k_,
            static_cast<std::size_t>(k_)};
  }
  [[nodiscard]] std::span<const Real> row(VertexId v) const noexcept {
    return {data_.data() + static_cast<std::size_t>(v) * k_,
            static_cast<std::size_t>(k_)};
  }

  [[nodiscard]] Real& at(VertexId v, int c) noexcept {
    return data_[static_cast<std::size_t>(v) * k_ + static_cast<std::size_t>(c)];
  }
  [[nodiscard]] Real at(VertexId v, int c) const noexcept {
    return data_[static_cast<std::size_t>(v) * k_ + static_cast<std::size_t>(c)];
  }

  [[nodiscard]] Real* data() noexcept { return data_.data(); }
  [[nodiscard]] const Real* data() const noexcept { return data_.data(); }
  [[nodiscard]] std::size_t size() const noexcept { return data_.size(); }

  /// Re-zero all entries (parallel).
  void clear();

 private:
  VertexId n_ = 0;
  int k_ = 0;
  gee::util::UninitBuffer<Real> data_;
};

/// L2-normalize every nonzero row in place (the Correlation option).
void normalize_rows(Embedding& z);

/// max_{v,c} |a - b|; infinity if shapes differ. Test/diagnostic helper.
Real max_abs_diff(const Embedding& a, const Embedding& b);

/// Index of the largest strictly-positive entry of a K-length row, or -1
/// when no entry is positive (abstention: no labeled neighbor donated
/// mass). Ties break toward the smaller class id. The single definition of
/// nearest-class prediction -- classify.hpp and the serving layer
/// (src/serve/) both route through it.
int argmax_class(std::span<const Real> row);

/// argmax_class of row v of `z`.
int argmax_row(const Embedding& z, VertexId v);

}  // namespace gee::core
