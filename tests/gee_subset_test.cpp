// Subset re-embedding tests: core::reembed_rows must reproduce, bitwise,
// the rows a full serial embed computes over the same (pair-key-sorted,
// per-pair-merged) edge multiset -- the exactness guarantee the streaming
// k-hop strategy is built on (DESIGN.md section 10) -- while leaving every
// row outside the subset untouched.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <map>
#include <utility>
#include <vector>

#include "gee/gee.hpp"
#include "gee/subset.hpp"
#include "graph/csr.hpp"
#include "graph/edge_list.hpp"
#include "partition/partitioner.hpp"
#include "testing/random_graphs.hpp"
#include "util/rng.hpp"

namespace {

using namespace gee;
using namespace gee::core;
using graph::EdgeId;
using graph::EdgeList;
using graph::VertexId;
using graph::Weight;

/// Coalesce an edge list the way DynamicGee::rebuild() does: one edge per
/// unordered pair, weights merged in double, sorted by packed pair key.
EdgeList merge_pairs(const EdgeList& el) {
  std::map<std::pair<VertexId, VertexId>, double> merged;
  for (EdgeId e = 0; e < el.num_edges(); ++e) {
    const VertexId u = std::min(el.src(e), el.dst(e));
    const VertexId v = std::max(el.src(e), el.dst(e));
    merged[{u, v}] += static_cast<double>(el.weight(e));
  }
  EdgeList out(el.num_vertices());
  out.reserve(merged.size());
  for (const auto& [pair, w] : merged) {
    out.add(pair.first, pair.second, static_cast<Weight>(w));
  }
  return out;
}

/// Deterministic row subset: every stride-th vertex, offset by salt.
std::vector<VertexId> pick_rows(VertexId n, VertexId stride, VertexId salt) {
  std::vector<VertexId> rows;
  for (VertexId v = salt % stride; v < n; v += stride) rows.push_back(v);
  return rows;
}

Embedding copy_of(const Embedding& src) {
  Embedding out(src.num_vertices(), src.dim());
  std::memcpy(out.data(), src.data(), src.size() * sizeof(Real));
  return out;
}

bool rows_bitwise_equal(const Embedding& a, const Embedding& b, VertexId v) {
  const auto ra = a.row(v);
  const auto rb = b.row(v);
  return std::memcmp(ra.data(), rb.data(), ra.size() * sizeof(Real)) == 0;
}

TEST(ReembedRows, BitwiseMatchesSerialEmbedAcrossGraphMatrix) {
  for (std::uint64_t seed : {1u, 7u}) {
    for (const auto& rg : testutil::random_graph_matrix(seed)) {
      const EdgeList merged = merge_pairs(rg.edges);
      const auto full =
          embed_edges(merged, rg.labels, {.backend = Backend::kCompiledSerial});
      const graph::Graph g = graph::Graph::build(
          merged, graph::GraphKind::kUndirected, {}, merged.num_vertices());
      const VertexId n = merged.num_vertices();

      // Corrupt the subset rows, then demand reembed restores them exactly.
      Embedding z = copy_of(full.z);
      const auto rows = pick_rows(n, 5, static_cast<VertexId>(seed));
      for (VertexId v : rows) {
        for (Real& cell : z.row(v)) cell = static_cast<Real>(-1.0);
      }
      const auto stats = reembed_rows(full.projection, rg.labels, rows,
                                      g.out(), &z);
      EXPECT_GT(stats.slices, 0) << rg.name;
      for (VertexId v = 0; v < n; ++v) {
        ASSERT_TRUE(rows_bitwise_equal(full.z, z, v))
            << rg.name << " row " << v;
      }
    }
  }
}

TEST(ReembedRows, SliceCountNeverChangesBits) {
  const auto rg = testutil::random_graph_matrix(11).front();
  const EdgeList merged = merge_pairs(rg.edges);
  const auto full =
      embed_edges(merged, rg.labels, {.backend = Backend::kCompiledSerial});
  const graph::Graph g = graph::Graph::build(
      merged, graph::GraphKind::kUndirected, {}, merged.num_vertices());
  const VertexId n = merged.num_vertices();
  std::vector<VertexId> rows(n);
  for (VertexId v = 0; v < n; ++v) rows[v] = v;

  for (int parts : {1, 2, 3, 7, 64}) {
    Embedding z = copy_of(full.z);
    for (VertexId v : rows) {
      for (Real& cell : z.row(v)) cell = static_cast<Real>(7.5);
    }
    reembed_rows(full.projection, rg.labels, rows, g.out(), &z, parts);
    for (VertexId v = 0; v < n; ++v) {
      ASSERT_TRUE(rows_bitwise_equal(full.z, z, v))
          << "parts " << parts << " row " << v;
    }
  }
}

TEST(ReembedRows, EmptySubsetIsANoOp) {
  const auto rg = testutil::random_graph_matrix(3).front();
  const EdgeList merged = merge_pairs(rg.edges);
  const auto full =
      embed_edges(merged, rg.labels, {.backend = Backend::kCompiledSerial});
  const graph::Graph g = graph::Graph::build(
      merged, graph::GraphKind::kUndirected, {}, merged.num_vertices());
  Embedding z = copy_of(full.z);
  const auto stats =
      reembed_rows(full.projection, rg.labels, {}, g.out(), &z);
  EXPECT_EQ(stats.slices, 0);
  EXPECT_EQ(stats.arcs, 0u);
  for (VertexId v = 0; v < merged.num_vertices(); ++v) {
    ASSERT_TRUE(rows_bitwise_equal(full.z, z, v));
  }
}

TEST(ReembedRows, IsolatedVertexRowBecomesZero) {
  // Vertex 4 has no incident edges: its recomputed row is exactly zero.
  EdgeList el(5);
  el.add(0, 1);
  el.add(1, 2);
  el.add(2, 3);
  const std::vector<std::int32_t> y = {0, 1, 0, 1, 0};
  const auto full = embed_edges(el, y, {.backend = Backend::kCompiledSerial});
  const graph::Graph g =
      graph::Graph::build(el, graph::GraphKind::kUndirected, {}, 5);
  Embedding z = copy_of(full.z);
  for (Real& cell : z.row(4)) cell = static_cast<Real>(9.0);
  const std::vector<VertexId> rows = {4};
  reembed_rows(full.projection, y, rows, g.out(), &z);
  for (Real cell : z.row(4)) EXPECT_EQ(cell, static_cast<Real>(0.0));
}

TEST(ReembedRows, SelfLoopsContributeTwice) {
  // One self-loop at vertex 0 plus an ordinary edge: the self-loop's mass
  // lands twice in row 0 (both endpoint passes), matching the full embed.
  EdgeList el(3);
  el.add(0, 0, 2.0f);
  el.add(0, 1, 1.0f);
  const std::vector<std::int32_t> y = {0, 1, 1};
  const auto full = embed_edges(el, y, {.backend = Backend::kCompiledSerial});
  const graph::Graph g =
      graph::Graph::build(el, graph::GraphKind::kUndirected, {}, 3);
  Embedding z = copy_of(full.z);
  for (Real& cell : z.row(0)) cell = static_cast<Real>(-3.0);
  const std::vector<VertexId> rows = {0};
  reembed_rows(full.projection, y, rows, g.out(), &z);
  ASSERT_TRUE(rows_bitwise_equal(full.z, z, 0));
}

// ------------------------------------------------------ subset_slices

TEST(SubsetSlices, CoversRangeMonotonically) {
  const std::vector<EdgeId> weights = {5, 1, 1, 9, 2, 2, 1, 4};
  for (int parts : {1, 2, 3, 8}) {
    const auto starts = partition::subset_slices(weights, parts);
    ASSERT_EQ(starts.size(), static_cast<std::size_t>(parts) + 1);
    EXPECT_EQ(starts.front(), 0u);
    EXPECT_EQ(starts.back(), weights.size());
    EXPECT_TRUE(std::is_sorted(starts.begin(), starts.end()));
  }
}

TEST(SubsetSlices, HeavyItemDoesNotDragNeighbors) {
  // One hub (weight 1000) among light rows: with 2 slices the boundary
  // must isolate the hub's side rather than splitting items 50/50.
  std::vector<EdgeId> weights(10, 1);
  weights[0] = 1000;
  const auto starts = partition::subset_slices(weights, 2);
  ASSERT_EQ(starts.size(), 3u);
  // Slice 0 carries the hub and little else.
  EXPECT_LE(starts[1], 2u);
  EXPECT_GE(starts[1], 1u);
}

TEST(SubsetSlices, MorePartsThanItemsYieldsEmptyTailSlices) {
  const std::vector<EdgeId> weights = {3, 3};
  const auto starts = partition::subset_slices(weights, 5);
  ASSERT_EQ(starts.size(), 6u);
  EXPECT_EQ(starts.front(), 0u);
  EXPECT_EQ(starts.back(), 2u);
  EXPECT_TRUE(std::is_sorted(starts.begin(), starts.end()));
}

}  // namespace
