// Tests for the spectral module: Jacobi against hand-diagonalizable
// matrices, subspace iteration against the dense oracle, and ASE block
// recovery on SBM graphs.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "cluster/kmeans.hpp"
#include "cluster/metrics.hpp"
#include "gen/sbm.hpp"
#include "graph/builder.hpp"
#include "graph/transform.hpp"
#include "spectral/eigen.hpp"
#include "util/rng.hpp"

namespace {

using namespace gee::spectral;
using namespace gee::graph;

TEST(Jacobi, DiagonalMatrixIsItsOwnDecomposition) {
  const std::vector<double> m{3, 0, 0, 0, -5, 0, 0, 0, 1};
  const auto pairs = jacobi_eigen(m, 3);
  ASSERT_EQ(pairs.size(), 3u);
  EXPECT_NEAR(pairs[0].value, -5.0, 1e-12);  // sorted by |value|
  EXPECT_NEAR(pairs[1].value, 3.0, 1e-12);
  EXPECT_NEAR(pairs[2].value, 1.0, 1e-12);
}

TEST(Jacobi, HandComputedTwoByTwo) {
  // [[2,1],[1,2]]: eigenvalues 3 and 1, vectors (1,1)/sqrt2, (1,-1)/sqrt2.
  const std::vector<double> m{2, 1, 1, 2};
  const auto pairs = jacobi_eigen(m, 2);
  EXPECT_NEAR(pairs[0].value, 3.0, 1e-12);
  EXPECT_NEAR(pairs[1].value, 1.0, 1e-12);
  EXPECT_NEAR(std::abs(pairs[0].vector[0]), 1 / std::sqrt(2.0), 1e-10);
  EXPECT_NEAR(std::abs(pairs[0].vector[1]), 1 / std::sqrt(2.0), 1e-10);
}

TEST(Jacobi, ReconstructsRandomSymmetricMatrix) {
  constexpr std::size_t n = 20;
  gee::util::Xoshiro256 rng(3);
  std::vector<double> m(n * n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i; j < n; ++j) {
      m[i * n + j] = m[j * n + i] = rng.next_normal();
    }
  }
  const auto pairs = jacobi_eigen(m, n);
  // Verify A v = lambda v for each pair.
  for (const auto& p : pairs) {
    for (std::size_t i = 0; i < n; ++i) {
      double av = 0;
      for (std::size_t j = 0; j < n; ++j) av += m[i * n + j] * p.vector[j];
      ASSERT_NEAR(av, p.value * p.vector[i], 1e-8);
    }
  }
}

TEST(Jacobi, RejectsBadSize) {
  EXPECT_THROW(jacobi_eigen({1, 2, 3}, 2), std::invalid_argument);
}

Csr small_symmetric_graph(std::uint64_t seed) {
  gee::util::Xoshiro256 rng(seed);
  EdgeList el(60);
  for (int e = 0; e < 300; ++e) {
    const auto u = static_cast<VertexId>(rng.next_below(60));
    const auto v = static_cast<VertexId>(rng.next_below(60));
    if (u != v) el.add(u, v);
  }
  const Graph g = Graph::build(el, GraphKind::kUndirected);
  return build_csr(gee::graph::symmetrize(el), 60);
}

TEST(Subspace, MatchesDenseOracleOnSmallGraph) {
  const Csr csr = small_symmetric_graph(5);
  const VertexId n = csr.num_vertices();
  // Dense adjacency for the oracle.
  std::vector<double> dense(static_cast<std::size_t>(n) * n, 0.0);
  for (VertexId u = 0; u < n; ++u) {
    for (const VertexId v : csr.neighbors(u)) {
      dense[static_cast<std::size_t>(u) * n + v] += 1.0;
    }
  }
  const auto oracle = jacobi_eigen(dense, n);
  const auto got = topk_eigen(csr, 4);
  ASSERT_EQ(got.size(), 4u);
  for (int c = 0; c < 4; ++c) {
    EXPECT_NEAR(got[static_cast<std::size_t>(c)].value,
                oracle[static_cast<std::size_t>(c)].value, 1e-5)
        << "eigenvalue " << c;
  }
}

TEST(Subspace, EigenvectorsSatisfyDefinition) {
  const Csr csr = small_symmetric_graph(9);
  const auto pairs = topk_eigen(csr, 3);
  for (const auto& p : pairs) {
    // ||A v - lambda v|| must be small relative to |lambda|.
    double err = 0;
    for (VertexId u = 0; u < csr.num_vertices(); ++u) {
      double av = 0;
      for (const VertexId v : csr.neighbors(u)) av += p.vector[v];
      err += (av - p.value * p.vector[u]) * (av - p.value * p.vector[u]);
    }
    EXPECT_LT(std::sqrt(err), 1e-4 * std::max(1.0, std::abs(p.value)));
  }
}

TEST(Subspace, InvalidK) {
  const Csr csr = small_symmetric_graph(2);
  EXPECT_THROW(topk_eigen(csr, 0), std::invalid_argument);
  EXPECT_THROW(topk_eigen(csr, 100), std::invalid_argument);
}

TEST(Ase, RecoversSbmBlocks) {
  // The spectral baseline the paper compares GEE against: ASE + k-means
  // must recover planted SBM blocks.
  const auto sbm_result =
      gee::gen::sbm(gee::gen::SbmParams::balanced(400, 2, 0.20, 0.02), 11);
  const Graph g = Graph::build(sbm_result.edges, GraphKind::kUndirected);
  const auto z = adjacency_spectral_embedding(g.out(), 2);
  const auto clusters = gee::cluster::kmeans(z, 400, 2, 2, {.seed = 3});
  EXPECT_GT(gee::cluster::adjusted_rand_index(clusters.assignment,
                                              sbm_result.labels),
            0.9);
}

}  // namespace
