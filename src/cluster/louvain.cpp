#include "cluster/louvain.hpp"

#include <algorithm>
#include <numeric>
#include <unordered_map>

#include "cluster/metrics.hpp"
#include "util/rng.hpp"

namespace gee::cluster {

namespace {

using graph::Csr;
using graph::VertexId;

/// Working graph for one level: CSR-ish weighted adjacency with self-loops
/// allowed (aggregated communities keep internal weight as a loop).
struct LevelGraph {
  std::vector<std::uint64_t> offsets;
  std::vector<VertexId> targets;
  std::vector<double> weights;
  std::vector<double> loop_weight;  // self-loop weight per vertex
  double total_weight = 0;          // 2m (sum of all arc weights + 2*loops)

  [[nodiscard]] VertexId size() const {
    return static_cast<VertexId>(loop_weight.size());
  }
};

LevelGraph from_csr(const Csr& csr) {
  LevelGraph g;
  const VertexId n = csr.num_vertices();
  g.offsets.assign(csr.offsets().begin(), csr.offsets().end());
  g.targets.assign(csr.targets().begin(), csr.targets().end());
  g.weights.resize(csr.num_edges());
  for (std::size_t e = 0; e < g.weights.size(); ++e) {
    g.weights[e] = static_cast<double>(csr.weight_at(e));
  }
  g.loop_weight.assign(n, 0.0);
  // Fold self-arcs into loop_weight (each stored loop arc carries half of
  // the loop's conventional 2x degree contribution; symmetrize() stores
  // loops twice, so summing stored loop arcs gives the full 2w).
  for (VertexId u = 0; u < n; ++u) {
    for (auto e = g.offsets[u]; e < g.offsets[u + 1]; ++e) {
      if (g.targets[e] == u) {
        g.loop_weight[u] += g.weights[e];
        g.weights[e] = 0;  // neutralized; skipped during moves
      }
    }
  }
  g.total_weight = 0;
  for (const double w : g.weights) g.total_weight += w;
  for (const double w : g.loop_weight) g.total_weight += w;
  return g;
}

struct LevelResult {
  std::vector<std::int32_t> community;  // per level-vertex, compacted
  std::int32_t count = 0;
  double modularity = 0;
};

/// One level of local moves. Returns the compacted community assignment.
LevelResult local_moves(const LevelGraph& g, const LouvainOptions& options,
                        std::uint64_t seed) {
  const VertexId n = g.size();
  const double two_m = g.total_weight;

  std::vector<std::int32_t> community(n);
  std::iota(community.begin(), community.end(), 0);

  // degree[u]: weighted degree incl. loops; community_degree[c]: sum over
  // members.
  std::vector<double> degree(n, 0);
  for (VertexId u = 0; u < n; ++u) {
    double d = g.loop_weight[u];
    for (auto e = g.offsets[u]; e < g.offsets[u + 1]; ++e) d += g.weights[e];
    degree[u] = d;
  }
  std::vector<double> community_degree = degree;

  std::vector<VertexId> order(n);
  std::iota(order.begin(), order.end(), 0);
  gee::util::Xoshiro256 rng(seed);
  for (VertexId i = n; i > 1; --i) {
    std::swap(order[i - 1], order[rng.next_below(i)]);
  }

  std::unordered_map<std::int32_t, double> weight_to;  // reused per vertex
  for (int sweep = 0; sweep < options.max_sweeps_per_level; ++sweep) {
    VertexId moved = 0;
    for (const VertexId u : order) {
      const std::int32_t old_c = community[u];
      weight_to.clear();
      for (auto e = g.offsets[u]; e < g.offsets[u + 1]; ++e) {
        if (g.weights[e] == 0) continue;  // neutralized loop
        weight_to[community[g.targets[e]]] += g.weights[e];
      }
      // Remove u from its community for gain computation.
      community_degree[static_cast<std::size_t>(old_c)] -= degree[u];

      std::int32_t best_c = old_c;
      double best_gain = weight_to.count(old_c) != 0
                             ? weight_to[old_c] -
                                   community_degree[static_cast<std::size_t>(
                                       old_c)] *
                                       degree[u] / two_m
                             : -community_degree[static_cast<std::size_t>(
                                   old_c)] *
                                   degree[u] / two_m;
      for (const auto& [c, w] : weight_to) {
        if (c == old_c) continue;
        const double gain =
            w - community_degree[static_cast<std::size_t>(c)] * degree[u] /
                    two_m;
        if (gain > best_gain + 1e-15) {
          best_gain = gain;
          best_c = c;
        }
      }
      community_degree[static_cast<std::size_t>(best_c)] += degree[u];
      if (best_c != old_c) {
        community[u] = best_c;
        ++moved;
      }
    }
    if (moved == 0) break;
  }

  // Compact community ids to [0, count).
  LevelResult r;
  std::unordered_map<std::int32_t, std::int32_t> remap;
  r.community.resize(n);
  for (VertexId u = 0; u < n; ++u) {
    auto [it, inserted] = remap.try_emplace(community[u], r.count);
    if (inserted) ++r.count;
    r.community[u] = it->second;
  }
  return r;
}

/// Aggregate: community graph whose vertices are the level's communities.
LevelGraph aggregate(const LevelGraph& g,
                     const std::vector<std::int32_t>& community,
                     std::int32_t count) {
  const auto k = static_cast<std::size_t>(count);
  std::vector<std::unordered_map<std::int32_t, double>> adj(k);
  std::vector<double> loops(k, 0.0);
  for (VertexId u = 0; u < g.size(); ++u) {
    const auto cu = static_cast<std::size_t>(community[u]);
    loops[cu] += g.loop_weight[u];
    for (auto e = g.offsets[u]; e < g.offsets[u + 1]; ++e) {
      if (g.weights[e] == 0) continue;
      const std::int32_t cv = community[g.targets[e]];
      if (static_cast<std::size_t>(cv) == cu) {
        loops[cu] += g.weights[e];  // intra-community arc becomes loop mass
      } else {
        adj[cu][cv] += g.weights[e];
      }
    }
  }
  LevelGraph out;
  out.loop_weight = std::move(loops);
  out.offsets.resize(k + 1, 0);
  for (std::size_t c = 0; c < k; ++c) {
    out.offsets[c + 1] = out.offsets[c] + adj[c].size();
  }
  out.targets.resize(out.offsets.back());
  out.weights.resize(out.offsets.back());
  for (std::size_t c = 0; c < k; ++c) {
    std::size_t pos = out.offsets[c];
    for (const auto& [cv, w] : adj[c]) {
      out.targets[pos] = static_cast<VertexId>(cv);
      out.weights[pos] = w;
      ++pos;
    }
  }
  out.total_weight = g.total_weight;
  return out;
}

}  // namespace

RefineResult refine_partition(const Csr& symmetric,
                              std::span<const std::int32_t> coarse,
                              std::uint64_t seed) {
  const VertexId n = symmetric.num_vertices();
  // Weighted degrees and 2m for modularity gains (loops count twice in a
  // row-sum of symmetric storage, consistent with louvain()).
  std::vector<double> degree(n, 0.0);
  double two_m = 0;
  for (VertexId u = 0; u < n; ++u) {
    const auto w = symmetric.edge_weights(u);
    double d = 0;
    if (w.empty()) {
      d = static_cast<double>(symmetric.degree(u));
    } else {
      for (const float x : w) d += x;
    }
    degree[u] = d;
    two_m += d;
  }

  RefineResult r;
  r.group.resize(n);
  std::iota(r.group.begin(), r.group.end(), 0);
  std::vector<double> group_degree = degree;
  std::vector<std::int32_t> group_size(n, 1);

  std::vector<VertexId> order(n);
  std::iota(order.begin(), order.end(), 0);
  gee::util::Xoshiro256 rng(seed);
  for (VertexId i = n; i > 1; --i) {
    std::swap(order[i - 1], order[rng.next_below(i)]);
  }

  std::unordered_map<std::int32_t, double> weight_to;
  for (const VertexId u : order) {
    // Leiden's restriction: only singletons move during refinement --
    // this is what makes every group connected by construction (a
    // singleton joins a group it has an edge into; groups never split).
    if (group_size[static_cast<std::size_t>(r.group[u])] != 1) continue;
    weight_to.clear();
    const auto neigh = symmetric.neighbors(u);
    const auto w = symmetric.edge_weights(u);
    for (std::size_t j = 0; j < neigh.size(); ++j) {
      const VertexId v = neigh[j];
      if (v == u || coarse[v] != coarse[u]) continue;  // stay in community
      weight_to[r.group[v]] += w.empty() ? 1.0 : static_cast<double>(w[j]);
    }
    const std::int32_t old_g = r.group[u];
    std::int32_t best_g = old_g;
    double best_gain = 0.0;  // staying put has gain 0
    for (const auto& [gid, wt] : weight_to) {
      if (gid == old_g) continue;
      const double gain =
          wt - group_degree[static_cast<std::size_t>(gid)] * degree[u] / two_m;
      if (gain > best_gain + 1e-15) {
        best_gain = gain;
        best_g = gid;
      }
    }
    if (best_g != old_g) {
      group_degree[static_cast<std::size_t>(old_g)] -= degree[u];
      group_size[static_cast<std::size_t>(old_g)] -= 1;
      group_degree[static_cast<std::size_t>(best_g)] += degree[u];
      group_size[static_cast<std::size_t>(best_g)] += 1;
      r.group[u] = best_g;
    }
  }

  // Compact group ids.
  std::unordered_map<std::int32_t, std::int32_t> remap;
  for (VertexId u = 0; u < n; ++u) {
    auto [it, inserted] = remap.try_emplace(r.group[u], r.num_groups);
    if (inserted) ++r.num_groups;
    r.group[u] = it->second;
  }
  return r;
}

LouvainResult leiden(const Csr& symmetric, const LouvainOptions& options) {
  LouvainResult result;
  const VertexId n = symmetric.num_vertices();
  result.community.resize(n);
  std::iota(result.community.begin(), result.community.end(), 0);
  result.num_communities = static_cast<std::int32_t>(n);
  if (n == 0 || symmetric.num_edges() == 0) return result;

  LevelGraph level = from_csr(symmetric);
  // Identity mapping original vertex -> current level vertex, maintained
  // through refined aggregations.
  std::vector<std::int32_t> to_level(n);
  std::iota(to_level.begin(), to_level.end(), 0);
  double prev_modularity = modularity(symmetric, result.community);

  for (int lvl = 0; lvl < options.max_levels; ++lvl) {
    const LevelResult moved = local_moves(
        level, options, gee::util::hash_combine(options.seed, lvl));

    // Refinement runs on the ORIGINAL graph within the communities induced
    // on original vertices (level 0) or on the level graph via projection.
    // Project coarse communities to original vertices first.
    std::vector<std::int32_t> coarse(n);
    for (VertexId v = 0; v < n; ++v) {
      coarse[v] = moved.community[static_cast<std::size_t>(to_level[v])];
    }
    const RefineResult refined = refine_partition(
        symmetric, coarse, gee::util::hash_combine(options.seed, 1000 + lvl));

    result.community = coarse;
    result.num_communities = moved.count;
    result.levels = lvl + 1;

    const double q = modularity(symmetric, result.community);
    result.modularity = q;
    if (q - prev_modularity < options.min_gain ||
        moved.count == static_cast<std::int32_t>(level.size())) {
      break;
    }
    prev_modularity = q;

    // Aggregate the ORIGINAL graph over refined groups (Leiden's key step:
    // aggregation nodes are the connected refined groups, not the coarse
    // communities), then continue at the next level.
    LevelGraph base = from_csr(symmetric);
    level = aggregate(base, refined.group, refined.num_groups);
    to_level = refined.group;
  }
  return result;
}

LouvainResult louvain(const Csr& symmetric, const LouvainOptions& options) {
  LouvainResult result;
  const VertexId n = symmetric.num_vertices();
  result.community.resize(n);
  std::iota(result.community.begin(), result.community.end(), 0);
  result.num_communities = static_cast<std::int32_t>(n);
  if (n == 0 || symmetric.num_edges() == 0) {
    return result;  // nothing to cluster
  }

  LevelGraph level = from_csr(symmetric);
  double prev_modularity = modularity(symmetric, result.community);

  for (int lvl = 0; lvl < options.max_levels; ++lvl) {
    const LevelResult moved = local_moves(
        level, options, gee::util::hash_combine(options.seed, lvl));

    // Project onto original vertices.
    for (VertexId v = 0; v < n; ++v) {
      result.community[v] =
          moved.community[static_cast<std::size_t>(result.community[v])];
    }
    result.num_communities = moved.count;
    result.levels = lvl + 1;

    const double q = modularity(symmetric, result.community);
    result.modularity = q;
    if (q - prev_modularity < options.min_gain ||
        moved.count == static_cast<std::int32_t>(level.size())) {
      break;  // converged: no merge happened or gain negligible
    }
    prev_modularity = q;
    level = aggregate(level, moved.community, moved.count);
  }
  return result;
}

}  // namespace gee::cluster
