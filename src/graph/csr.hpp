// Compressed sparse row adjacency and the Graph facade.
//
// Csr is the storage format every engine traversal reads: offsets[u] ..
// offsets[u+1] index the targets (and optional weights) of u's out-edges.
// Graph bundles the out-CSR with the in-CSR (transpose); for undirected
// graphs both point at the same symmetric Csr, matching Ligra's treatment
// of an undirected graph as two symmetric directed graphs (paper section II).
#pragma once

#include <cassert>
#include <memory>
#include <span>
#include <vector>

#include "graph/edge_list.hpp"
#include "graph/types.hpp"
#include "util/aux_cache.hpp"

namespace gee::graph {

class Csr {
 public:
  Csr() = default;

  /// Adopt prebuilt arrays. offsets.size() == n+1, offsets.back() ==
  /// targets.size(), weights empty or same length as targets.
  Csr(std::vector<EdgeId> offsets, std::vector<VertexId> targets,
      std::vector<Weight> weights = {});

  [[nodiscard]] VertexId num_vertices() const noexcept {
    return offsets_.empty() ? 0 : static_cast<VertexId>(offsets_.size() - 1);
  }
  [[nodiscard]] EdgeId num_edges() const noexcept {
    return offsets_.empty() ? 0 : offsets_.back();
  }
  [[nodiscard]] bool weighted() const noexcept { return !weights_.empty(); }

  [[nodiscard]] EdgeId degree(VertexId u) const noexcept {
    assert(u < num_vertices());
    return offsets_[u + 1] - offsets_[u];
  }

  /// Out-neighbors of u in storage order.
  [[nodiscard]] std::span<const VertexId> neighbors(VertexId u) const noexcept {
    assert(u < num_vertices());
    return {targets_.data() + offsets_[u],
            static_cast<std::size_t>(degree(u))};
  }

  /// Weights aligned with neighbors(u); empty span when unweighted.
  [[nodiscard]] std::span<const Weight> edge_weights(VertexId u) const noexcept {
    if (weights_.empty()) return {};
    return {weights_.data() + offsets_[u],
            static_cast<std::size_t>(degree(u))};
  }

  /// Weight of the i-th edge in global storage order (1 when unweighted).
  [[nodiscard]] Weight weight_at(EdgeId e) const noexcept {
    return weights_.empty() ? Weight{1} : weights_[e];
  }

  [[nodiscard]] std::span<const EdgeId> offsets() const noexcept {
    return offsets_;
  }
  [[nodiscard]] std::span<const VertexId> targets() const noexcept {
    return targets_;
  }
  [[nodiscard]] std::span<const Weight> weights() const noexcept {
    return weights_;
  }

 private:
  std::vector<EdgeId> offsets_;    // n+1 entries; offsets_[0] == 0
  std::vector<VertexId> targets_;  // m entries
  std::vector<Weight> weights_;    // m entries or empty (unit weights)
};

/// How Graph::build interprets the input edge list.
enum class GraphKind {
  /// Keep edges as given; build the transpose for in-edge traversals.
  kDirected,
  /// Mirror every edge (u,v) -> (v,u) before building; in == out.
  kUndirected,
  /// Input is already symmetric (e.g. generator emitted both arcs); in == out
  /// without re-symmetrizing.
  kSymmetrized,
};

struct BuildOptions {
  /// Sort each adjacency row by target id (deterministic layout; required
  /// for is_symmetric and binary-search membership tests).
  bool sort_neighbors = true;
  /// Build the in-CSR (transpose) for directed graphs. The GEE pull backend
  /// and dense edgeMap need it; pure push algorithms can skip the memory.
  bool build_in_csr = true;
};

class Graph {
 public:
  Graph() = default;

  /// Build from an edge list. `n` == 0 means "use edges.num_vertices()".
  static Graph build(const EdgeList& edges, GraphKind kind,
                     BuildOptions options = {}, VertexId n = 0);

  /// Wrap an existing symmetric CSR (in == out).
  static Graph from_symmetric_csr(Csr csr);

  /// Wrap directed out/in CSR pair (in may be empty -> in() unavailable).
  static Graph from_directed_csr(Csr out, Csr in);

  /// In-place mutation hook: replace this Graph's adjacency with one rebuilt
  /// from `edges` (same parameters as build). Every derived structure cached
  /// on aux() is invalidated by detaching to a *fresh* AuxCache -- copies of
  /// the pre-mutation Graph keep the old cache, which still matches their
  /// (shared, immutable) CSR, so a stale plan can never be paired with the
  /// new adjacency. generation() increments on every mutation; long-lived
  /// holders can compare generations instead of pointers.
  void rebuild(const EdgeList& edges, GraphKind kind, BuildOptions options = {},
               VertexId n = 0);

  [[nodiscard]] VertexId num_vertices() const noexcept {
    return out_ ? out_->num_vertices() : 0;
  }
  /// Number of stored directed arcs (an undirected edge counts twice).
  [[nodiscard]] EdgeId num_arcs() const noexcept {
    return out_ ? out_->num_edges() : 0;
  }
  [[nodiscard]] bool directed() const noexcept { return directed_; }
  [[nodiscard]] bool weighted() const noexcept {
    return out_ && out_->weighted();
  }

  [[nodiscard]] const Csr& out() const noexcept {
    assert(out_);
    return *out_;
  }
  [[nodiscard]] bool has_in() const noexcept { return in_ != nullptr; }
  [[nodiscard]] const Csr& in() const noexcept {
    assert(in_);
    return *in_;
  }

  /// Cache for structures derived from this graph's current adjacency,
  /// e.g. the edge partition plan. Shared by copies, so repeated embed()
  /// calls on the same graph amortize derived-structure construction.
  /// rebuild() detaches to a fresh cache (see above): cached artifacts are
  /// valid exactly as long as the adjacency they were derived from.
  [[nodiscard]] util::AuxCache& aux() const noexcept { return *aux_; }

  /// Mutation counter: 0 for a freshly built graph, +1 per rebuild().
  /// Copies inherit the value at copy time.
  [[nodiscard]] std::uint64_t generation() const noexcept {
    return generation_;
  }

 private:
  std::shared_ptr<const Csr> out_;
  std::shared_ptr<const Csr> in_;  // == out_ for undirected graphs
  std::shared_ptr<util::AuxCache> aux_ = std::make_shared<util::AuxCache>();
  std::uint64_t generation_ = 0;
  bool directed_ = false;
};

}  // namespace gee::graph
