// k-hop closure: the frontier-expansion loop of BFS, packaged as a
// reusable primitive over the Ligra edge_map machinery.
//
// expand_k_hops(G, seeds, k) returns the set of vertices reachable from
// `seeds` in at most k hops (seeds included -- the *closed* neighborhood).
// Each hop is one edge_map call with a visited-flag functor, so the
// traversal inherits Ligra's dense/sparse auto-switching and frontier
// deduplication: a vertex reached through ten parallel paths appears in
// the result once, and a huge hop automatically flips from sparse push to
// the dense pull mode.
//
// The streaming k-hop update strategy (src/stream/dynamic_gee.cpp,
// DESIGN.md section 10) is the load-bearing consumer: after an update
// batch it seeds with the changed endpoints, expands k hops over a CSR
// snapshot, and re-embeds exactly the returned subset. `max_members`
// exists for that caller's auto-heuristic -- expansion abandons early
// once the closure grows past the cap, so probing "is this batch
// localized?" costs only the partial expansion, never a full traversal.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/csr.hpp"
#include "ligra/edge_map.hpp"
#include "ligra/vertex_subset.hpp"

namespace gee::ligra {

struct KHopOptions {
  /// Hops to expand; 0 returns the seeds unchanged.
  int hops = 1;
  /// Stop early once the closure exceeds this many members (result has
  /// truncated == true and holds the partial closure). 0 = unbounded.
  VertexId max_members = 0;
  /// Per-hop edge_map traversal knobs (mode is normally kAuto).
  EdgeMapOptions edge_map;
};

struct KHopResult {
  /// Seeds plus every vertex within `hops` of one, deduplicated; sparse,
  /// ascending. Meaningful only up to the hop where truncation struck.
  VertexSubset closure;
  /// Hops actually expanded (< hops when a frontier emptied or the
  /// member cap struck).
  int hops_expanded = 0;
  /// True when max_members stopped the expansion early.
  bool truncated = false;
  /// Sum of frontier out-degrees across executed hops (the traversal's
  /// edge work, as reported by EdgeMapStats).
  graph::EdgeId edges_traversed = 0;
};

/// Closed k-hop neighborhood of `seeds` in `g`. Seeds must be a subset of
/// [0, g.num_vertices()).
[[nodiscard]] KHopResult expand_k_hops(const graph::Graph& g,
                                       const VertexSubset& seeds,
                                       const KHopOptions& options = {});

}  // namespace gee::ligra
