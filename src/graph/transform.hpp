// Edge-list and vertex-space transforms.
//
// These are the preprocessing steps the paper's pipeline needs before the
// embedding pass: symmetrization (undirected graphs are "two symmetric
// directed graphs", section II), self-loop handling (the GEE reference
// code's diagonal augmentation adds them; most raw datasets need them
// removed), duplicate-edge merging, and vertex relabeling/permutation
// (generators permute ids to break degree-locality artifacts).
#pragma once

#include <cstdint>
#include <vector>

#include "graph/edge_list.hpp"

namespace gee::graph {

/// Both arcs for every input edge: (u,v) and (v,u). Self-loops are also
/// emitted twice: an undirected loop contributes 2 to its vertex's degree
/// (the standard convention), and GEE's Algorithm 1 fires both update lines
/// for a loop, so symmetric storage must carry two copies for per-arc
/// processing to reproduce the reference embedding exactly.
[[nodiscard]] EdgeList symmetrize(const EdgeList& edges);

/// Remove edges with src == dst, preserving order of the rest.
[[nodiscard]] EdgeList remove_self_loops(const EdgeList& edges);

/// Append one self-loop (v, v, w) per vertex -- the GEE reference code's
/// diagonal augmentation (DiagA) preprocessing.
[[nodiscard]] EdgeList add_self_loops(const EdgeList& edges, Weight w = 1.0f);

/// Merge duplicate (src, dst) pairs. Weights of merged duplicates are
/// summed (the natural semantics for multigraph -> weighted-graph collapse).
/// Output is sorted by (src, dst).
[[nodiscard]] EdgeList dedup_edges(const EdgeList& edges);

/// Apply vertex permutation: vertex v becomes perm[v] on both endpoints.
/// perm must be a bijection on [0, num_vertices).
[[nodiscard]] EdgeList relabel_vertices(const EdgeList& edges,
                                        const std::vector<VertexId>& perm);

/// Uniformly random vertex permutation (Fisher-Yates, seeded).
[[nodiscard]] std::vector<VertexId> random_permutation(VertexId n,
                                                       std::uint64_t seed);

/// Randomly permute the *order* of edges in the list (endpoints unchanged).
/// Bench harnesses use this so edge-list backends see cache-hostile order.
[[nodiscard]] EdgeList shuffle_edges(const EdgeList& edges,
                                     std::uint64_t seed);

}  // namespace gee::graph
